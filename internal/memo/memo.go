// Package memo is a content-addressed result cache for deterministic
// sweeps. Every evaluation artifact in this repository is a pure function
// of explicit inputs — machine configuration, protocol timing constants,
// seeds and measurement options — so a sweep's result can be stored under
// a digest of those inputs and returned on the next run without touching
// the simulator. The cache is two-level: an in-process map for repeated
// sweeps within one invocation (Table II re-measures the same latency
// sweep per kernel, for example) and an optional on-disk directory
// (results/.memocache/ by convention) so repeated binary invocations with
// -cache are served from disk.
//
// Correctness rests on the key discipline, not on the cache: a key must
// fold every input that can change the result (KeyWriter makes the folds
// explicit), plus VersionSalt, which must be bumped whenever measurement
// semantics change so stale entries can never be replayed across code
// versions.
package memo

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
)

// VersionSalt invalidates every previously stored entry when the meaning
// of a measurement changes. Bump the suffix on any semantic change to the
// simulator, the measurement kernels, or the key scheme itself.
const VersionSalt = "knlcap-memo-v1"

// Key is the 128-bit content address of one sweep result (two independent
// FNV-1a 64 lanes; the pair makes accidental collisions across the few
// thousand keys a repository ever produces implausible).
type Key struct{ A, B uint64 }

const (
	fnvOffset  = 14695981039346656037
	fnvOffset2 = fnvOffset ^ 0x9e3779b97f4a7c15
	fnvPrime   = 1099511628211
)

// KeyWriter folds typed inputs into a Key. The fold methods chain so key
// construction reads as a declaration of what the result depends on.
type KeyWriter struct{ a, b uint64 }

// NewKey starts a key with the version salt and a workload identifier.
func NewKey(workload string) *KeyWriter {
	w := &KeyWriter{a: fnvOffset, b: fnvOffset2}
	return w.Str(VersionSalt).Str(workload)
}

func (w *KeyWriter) fold(c byte) {
	w.a = (w.a ^ uint64(c)) * fnvPrime
	w.b = (w.b ^ uint64(c)) * fnvPrime
}

// Uint folds 8 bytes.
func (w *KeyWriter) Uint(v uint64) *KeyWriter {
	for i := 0; i < 8; i++ {
		w.fold(byte(v >> (8 * i)))
	}
	return w
}

// Int folds an integer.
func (w *KeyWriter) Int(v int) *KeyWriter { return w.Uint(uint64(v)) }

// Float folds the IEEE-754 bit pattern, so the fold is exact (no
// formatting round-trip).
func (w *KeyWriter) Float(v float64) *KeyWriter { return w.Uint(math.Float64bits(v)) }

// Bool folds a flag.
func (w *KeyWriter) Bool(v bool) *KeyWriter {
	if v {
		return w.Uint(1)
	}
	return w.Uint(0)
}

// Str folds a length-delimited string (delimiting keeps "ab"+"c" and
// "a"+"bc" distinct).
func (w *KeyWriter) Str(s string) *KeyWriter {
	w.Uint(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		w.fold(s[i])
	}
	return w
}

// Ints folds a length-delimited int slice.
func (w *KeyWriter) Ints(vs []int) *KeyWriter {
	w.Uint(uint64(len(vs)))
	for _, v := range vs {
		w.Int(v)
	}
	return w
}

// Key finalizes the digest.
func (w *KeyWriter) Key() Key { return Key{A: w.a, B: w.b} }

// Stats counts cache traffic; read them via Cache.Stats.
type Stats struct {
	Hits       uint64 // in-memory hits
	DiskHits   uint64 // entries loaded from the cache directory
	Misses     uint64
	Stores     uint64
	WriteErrs  uint64 // failed disk writes (entry still cached in memory)
	DecodeErrs uint64 // undecodable entries treated as misses
}

// String renders the counters for the cmd tools' stderr summary line.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d disk-hits=%d misses=%d stores=%d write-errs=%d decode-errs=%d",
		s.Hits, s.DiskHits, s.Misses, s.Stores, s.WriteErrs, s.DecodeErrs)
}

// Cache is a two-level (memory + optional disk) result store. The zero
// value is not usable; construct with New or NewMemory. A nil *Cache is a
// valid no-op target for Lookup and Store, so callers thread an optional
// cache without branching.
type Cache struct {
	mu    sync.Mutex
	mem   map[Key][]byte
	dir   string
	stats Stats
}

// NewMemory returns an in-process cache with no disk level.
func NewMemory() *Cache { return &Cache{mem: map[Key][]byte{}} }

// New returns a cache backed by dir (created if missing). Entries are one
// file per key, written atomically, so concurrent invocations sharing a
// directory see either a complete entry or none.
func New(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("memo: %w", err)
	}
	return &Cache{mem: map[Key][]byte{}, dir: dir}, nil
}

// Dir returns the disk directory, "" for memory-only caches.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(k Key) string {
	return filepath.Join(c.dir, fmt.Sprintf("%016x%016x.memo", k.A, k.B))
}

// lookupMem is the warm-sweep fast path: a repeated invocation must answer
// from here without simulating or allocating.
//
//knl:hotpath cache hits on repeat sweeps; the ci.sh memo gate asserts the second -cache run never simulates
func (c *Cache) lookupMem(k Key) ([]byte, bool) {
	c.mu.Lock()
	b, ok := c.mem[k]
	if ok {
		c.stats.Hits++
	}
	c.mu.Unlock()
	return b, ok
}

// Get returns the stored bytes for k, consulting memory first and then the
// disk level (populating memory on a disk hit).
func (c *Cache) Get(k Key) ([]byte, bool) {
	if b, ok := c.lookupMem(k); ok {
		return b, true
	}
	if c.dir != "" {
		if b, err := os.ReadFile(c.path(k)); err == nil {
			c.mu.Lock()
			c.mem[k] = b
			c.stats.DiskHits++
			c.mu.Unlock()
			return b, true
		}
	}
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores data under k in memory and, when a directory is configured,
// on disk. A failed disk write only degrades the cache to memory-only for
// that entry (counted in Stats.WriteErrs); it never fails the measurement.
func (c *Cache) Put(k Key, data []byte) {
	c.mu.Lock()
	if _, dup := c.mem[k]; dup {
		c.mu.Unlock()
		return
	}
	c.mem[k] = data
	c.stats.Stores++
	dir := c.dir
	c.mu.Unlock()
	if dir == "" {
		return
	}
	if err := writeAtomic(c.path(k), data); err != nil {
		c.mu.Lock()
		c.stats.WriteErrs++
		c.mu.Unlock()
	}
}

// writeAtomic writes via a temp file and rename, so a reader never
// observes a torn entry.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		if rmErr := os.Remove(tmp); rmErr != nil {
			return fmt.Errorf("%w (and could not remove temp: %v)", err, rmErr)
		}
		return err
	}
	return nil
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	s := c.stats
	c.mu.Unlock()
	return s
}

// Lookup decodes the cached value for k into T. A nil cache, a miss, or an
// undecodable entry (counted, treated as a miss) all return ok=false.
func Lookup[T any](c *Cache, k Key) (T, bool) {
	var zero T
	if c == nil {
		return zero, false
	}
	data, ok := c.Get(k)
	if !ok {
		return zero, false
	}
	var v T
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v); err != nil {
		c.mu.Lock()
		c.stats.DecodeErrs++
		c.mu.Unlock()
		return zero, false
	}
	return v, true
}

// Store encodes v under k. A nil cache is a no-op. Encoding uses gob:
// float64 round-trips bit-exactly, and every cached result type in this
// repository is a concrete struct/slice of exported fields. An
// unencodable type is a programming error and panics.
func Store[T any](c *Cache, k Key, v T) {
	if c == nil {
		return
	}
	c.Put(k, encodeValue(v))
}

// encodeValue serializes a result for the cache. It is a purity root
// (DESIGN.md §7): what goes into the content-addressed store must be a
// pure function of the value, so the purity analyzer walks the call
// graph from here and forbids time/rand/os and package-level writes.
func encodeValue[T any](v T) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("memo: encode: %v", err))
	}
	return buf.Bytes()
}
