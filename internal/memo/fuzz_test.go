package memo

import "testing"

// FuzzKeyWriter drives the fold-boundary ambiguities the memokey analyzer
// trusts the encoding to rule out. The length prefixes on Str and Ints
// are what keep Str("ab").Str("c") and Str("a").Str("bc") — identical
// payload bytes, different fold boundaries — at different keys; the fuzzer
// sweeps every split point of an arbitrary payload and demands all of
// them, plus the unsplit fold, stay pairwise distinct. (The assertions
// hold up to a 128-bit two-lane FNV collision, which the fuzzer cannot
// realistically produce; what it can find is an encoding that yields
// byte-identical fold streams for distinct inputs.)
func FuzzKeyWriter(f *testing.F) {
	f.Add("abc", []byte{1, 2, 3})
	f.Add("", []byte{})
	f.Add("ab", []byte{0})
	f.Add("\x00\x00\x00\x00\x00\x00\x00\x00", []byte{8, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, s string, raw []byte) {
		// Determinism first: the same fold program must reproduce its key.
		whole := NewKey("fuzz").Str(s).Key()
		if again := NewKey("fuzz").Str(s).Key(); again != whole {
			t.Fatalf("Str(%q) is not deterministic: %v vs %v", s, whole, again)
		}

		// Str split ambiguity: every two-fold split of s must differ from
		// the single fold and from every other split point.
		seen := map[Key]int{}
		for p := 0; p <= len(s); p++ {
			k := NewKey("fuzz").Str(s[:p]).Str(s[p:]).Key()
			if k == whole {
				t.Fatalf("Str(%q).Str(%q) collides with Str(%q)", s[:p], s[p:], s)
			}
			if q, dup := seen[k]; dup {
				t.Fatalf("splits %d and %d of %q fold to the same key", q, p, s)
			}
			seen[k] = p
		}

		// Ints length-prefix edges: same sweep over an int slice derived
		// from the raw bytes, including negative values and zeros.
		vs := make([]int, len(raw))
		for i, b := range raw {
			vs[i] = int(b) - 128
		}
		wholeInts := NewKey("fuzz").Ints(vs).Key()
		seenInts := map[Key]int{}
		for p := 0; p <= len(vs); p++ {
			k := NewKey("fuzz").Ints(vs[:p]).Ints(vs[p:]).Key()
			if k == wholeInts {
				t.Fatalf("Ints(%v).Ints(%v) collides with Ints(%v)", vs[:p], vs[p:], vs)
			}
			if q, dup := seenInts[k]; dup {
				t.Fatalf("splits %d and %d of %v fold to the same key", q, p, vs)
			}
			seenInts[k] = p
		}

		// A length-prefixed slice must not collide with folding its
		// elements bare — otherwise Ints could silently alias a run of
		// Int folds and the slice boundary would be lost.
		if len(vs) > 0 {
			bare := NewKey("fuzz")
			for _, v := range vs {
				bare = bare.Int(v)
			}
			if bare.Key() == wholeInts {
				t.Fatalf("bare Int folds of %v collide with Ints(%v)", vs, vs)
			}
		}

		// Canonical empties: nil and empty slices are the same declaration
		// of "no elements" and must share a key.
		if NewKey("fuzz").Ints(nil).Key() != NewKey("fuzz").Ints([]int{}).Key() {
			t.Fatal("Ints(nil) and Ints([]) disagree")
		}

		// Fold order is part of the key: swapping two distinct elements
		// must move it.
		if len(vs) >= 2 && vs[0] != vs[1] {
			a := NewKey("fuzz").Int(vs[0]).Int(vs[1]).Key()
			b := NewKey("fuzz").Int(vs[1]).Int(vs[0]).Key()
			if a == b {
				t.Fatalf("swapping Int(%d) and Int(%d) does not change the key", vs[0], vs[1])
			}
		}
	})
}
