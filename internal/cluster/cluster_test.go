package cluster

import (
	"testing"

	"knlcap/internal/cache"
	"knlcap/internal/knl"
)

func mapperFor(cm knl.ClusterMode) *Mapper {
	cfg := knl.DefaultConfig().WithModes(cm, knl.Flat)
	return NewMapper(knl.NewFloorplan(cfg.YieldSeed), cfg)
}

func TestChannelAssignmentPerMode(t *testing.T) {
	for _, cm := range knl.ClusterModes {
		m := mapperFor(cm)
		// Every cluster interleaves DDR over the 3 channels of its closest
		// IMC (all 6 in single-cluster modes); the two quadrants of a
		// hemisphere share channels (there are only two IMCs).
		for c := 0; c < cm.Clusters(); c++ {
			want := 3
			if cm.Clusters() == 1 {
				want = knl.DDRChannels
			}
			if got := len(m.ddrByCluster[c]); got != want {
				t.Errorf("%v: cluster %d has %d DDR channels, want %d", cm, c, got, want)
			}
			imc := m.hemisphereOfCluster(c)
			for _, ch := range m.ddrByCluster[c] {
				if cm.Clusters() > 1 && ch/3 != imc {
					t.Errorf("%v: cluster %d uses channel %d of remote IMC", cm, c, ch)
				}
			}
		}
		// EDCs partition evenly (each quadrant has its own two EDCs).
		for c := 0; c < cm.Clusters(); c++ {
			want := knl.NumEDC / cm.Clusters()
			if got := len(m.edcByCluster[c]); got != want {
				t.Errorf("%v: cluster %d has %d EDCs, want %d", cm, c, got, want)
			}
		}
	}
}

func TestPlaceDeterministic(t *testing.T) {
	m := mapperFor(knl.SNC4)
	a := m.Place(knl.DDR, 2, 12345)
	b := m.Place(knl.DDR, 2, 12345)
	if a != b {
		t.Errorf("Place not deterministic: %+v vs %+v", a, b)
	}
}

func TestPlaceSNCRespectsAffinity(t *testing.T) {
	m := mapperFor(knl.SNC4)
	for aff := 0; aff < 4; aff++ {
		for l := cache.Line(0); l < 500; l++ {
			p := m.Place(knl.DDR, aff, l)
			if p.Channel/3 != m.hemisphereOfCluster(aff) {
				t.Fatalf("affinity %d line %d landed on channel %d of the remote IMC",
					aff, l, p.Channel)
			}
			if m.ClusterOfTile(p.HomeTile)&1 != aff&1 {
				t.Fatalf("affinity %d line %d home tile %d outside hemisphere", aff, l, p.HomeTile)
			}
			pm := m.Place(knl.MCDRAM, aff, l)
			if m.clusterOfEDC(pm.Channel) != aff {
				t.Fatalf("MCDRAM affinity %d line %d on EDC %d of wrong cluster",
					aff, l, pm.Channel)
			}
		}
	}
}

func TestPlaceQuadrantHomeMatchesChannelCluster(t *testing.T) {
	m := mapperFor(knl.Quadrant)
	for l := cache.Line(0); l < 2000; l++ {
		p := m.Place(knl.MCDRAM, 0, l)
		if m.clusterOfEDC(p.Channel) != m.ClusterOfTile(p.HomeTile) {
			t.Fatalf("line %d: EDC cluster %d != home tile cluster %d",
				l, m.clusterOfEDC(p.Channel), m.ClusterOfTile(p.HomeTile))
		}
	}
}

func TestPlaceA2ASpreadsHomesAcrossDie(t *testing.T) {
	m := mapperFor(knl.A2A)
	homes := map[int]int{}
	for l := cache.Line(0); l < 4000; l++ {
		p := m.Place(knl.DDR, 0, l)
		homes[p.HomeTile]++
	}
	if len(homes) != knl.ActiveTiles {
		t.Errorf("A2A used %d home tiles, want all %d", len(homes), knl.ActiveTiles)
	}
	for tile, c := range homes {
		if c < 4000/knl.ActiveTiles/3 {
			t.Errorf("home tile %d badly underused: %d hits", tile, c)
		}
	}
}

func TestPlaceChannelUniformity(t *testing.T) {
	for _, cm := range []knl.ClusterMode{knl.A2A, knl.Quadrant} {
		m := mapperFor(cm)
		counts := make([]int, knl.DDRChannels)
		const n = 12000
		for l := cache.Line(0); l < n; l++ {
			counts[m.Place(knl.DDR, 0, l).Channel]++
		}
		for ch, c := range counts {
			want := n / knl.DDRChannels
			if c < want*8/10 || c > want*12/10 {
				t.Errorf("%v: DDR channel %d has %d lines, want ~%d", cm, ch, c, want)
			}
		}
	}
}

func TestPlaceBadAffinityPanics(t *testing.T) {
	m := mapperFor(knl.SNC2)
	defer func() {
		if recover() == nil {
			t.Error("bad affinity did not panic")
		}
	}()
	m.Place(knl.DDR, 5, 1)
}

func TestCacheEDCStaysInClusterOfDDRChannel(t *testing.T) {
	cfg := knl.DefaultConfig().WithModes(knl.SNC4, knl.CacheMode)
	m := NewMapper(knl.NewFloorplan(cfg.YieldSeed), cfg)
	for ch := 0; ch < knl.DDRChannels; ch++ {
		for l := cache.Line(0); l < 200; l++ {
			want := m.homeClusterForDDR(ch, l)
			e := m.CacheEDC(ch, l)
			if got := m.clusterOfEDC(e); got != want {
				t.Fatalf("channel %d line %d cached on EDC %d (cluster %d), want cluster %d",
					ch, l, e, got, want)
			}
		}
	}
}

func TestCacheEDCA2AUsesAllEDCs(t *testing.T) {
	cfg := knl.DefaultConfig().WithModes(knl.A2A, knl.CacheMode)
	m := NewMapper(knl.NewFloorplan(cfg.YieldSeed), cfg)
	used := map[int]bool{}
	for l := cache.Line(0); l < 1000; l++ {
		used[m.CacheEDC(0, l)] = true
	}
	if len(used) != knl.NumEDC {
		t.Errorf("A2A cache-mode used %d EDCs, want %d", len(used), knl.NumEDC)
	}
}

func TestChannelsFor(t *testing.T) {
	m := mapperFor(knl.Quadrant) // transparent: all channels visible
	if got := len(m.ChannelsFor(knl.DDR, 0)); got != knl.DDRChannels {
		t.Errorf("transparent ChannelsFor = %d, want %d", got, knl.DDRChannels)
	}
	ms := mapperFor(knl.SNC2)
	if got := len(ms.ChannelsFor(knl.DDR, 0)); got != knl.DDRChannels/2 {
		t.Errorf("SNC2 ChannelsFor = %d, want %d", got, knl.DDRChannels/2)
	}
}
