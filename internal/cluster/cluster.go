// Package cluster implements the address-affinity policies of the KNL
// cluster modes: which CHA tag directory is home for a cache line, which
// memory channel serves it, and which EDC caches it in cache memory mode
// (paper Section II-D, Figure 3).
package cluster

import (
	"fmt"

	"knlcap/internal/cache"
	"knlcap/internal/knl"
)

// Mapper answers placement questions for one machine configuration.
type Mapper struct {
	fp  *knl.Floorplan
	cfg knl.Config

	// tilesByCluster[c] lists logical tiles of affinity cluster c under the
	// configured mode (one entry, the full list, for A2A).
	tilesByCluster [][]int
	// ddrByCluster[c] lists global DDR channel indices (0..5) usable by
	// cluster c; all channels for 1-cluster modes.
	ddrByCluster [][]int
	// edcByCluster[c] lists EDC indices (0..7) usable by cluster c.
	edcByCluster [][]int
	// allDDR / allEDC are the full channel index lists, precomputed so the
	// per-access placement path (Place, CacheEDC) never allocates.
	allDDR []int
	allEDC []int
}

// NewMapper precomputes the affinity tables for fp under cfg.
func NewMapper(fp *knl.Floorplan, cfg knl.Config) *Mapper {
	m := &Mapper{fp: fp, cfg: cfg}
	n := cfg.Cluster.Clusters()
	m.tilesByCluster = make([][]int, n)
	m.ddrByCluster = make([][]int, n)
	m.edcByCluster = make([][]int, n)
	for c := 0; c < n; c++ {
		m.tilesByCluster[c] = fp.TilesInCluster(cfg.Cluster, c)
		if len(m.tilesByCluster[c]) == 0 {
			panic(fmt.Sprintf("cluster: mode %v cluster %d has no tiles", cfg.Cluster, c))
		}
	}
	// DDR: a cluster interleaves over all three channels of its closest IMC
	// (paper Section II-D: "the DDR range assigned to a quadrant is
	// interleaved among the three DDR channels of the closest DDR memory
	// controller"), so in four-cluster modes the two quadrants of a
	// hemisphere share that hemisphere's channels.
	for c := 0; c < n; c++ {
		imc := m.hemisphereOfCluster(c)
		if n == 1 {
			for ch := 0; ch < knl.DDRChannels; ch++ {
				m.ddrByCluster[c] = append(m.ddrByCluster[c], ch)
			}
			continue
		}
		for ch := imc * 3; ch < imc*3+3; ch++ {
			m.ddrByCluster[c] = append(m.ddrByCluster[c], ch)
		}
	}
	for e := 0; e < knl.NumEDC; e++ {
		c := m.clusterOfEDC(e)
		m.edcByCluster[c] = append(m.edcByCluster[c], e)
	}
	m.allDDR = indices(knl.DDRChannels)
	m.allEDC = indices(knl.NumEDC)
	return m
}

// indices returns [0, 1, ..., n-1].
func indices(n int) []int {
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	return all
}

// hemisphereOfCluster maps an affinity cluster to its die hemisphere
// (quadrant numbering keeps bit0 = right half).
func (m *Mapper) hemisphereOfCluster(c int) int {
	if m.cfg.Cluster.Clusters() == 1 {
		return 0
	}
	return c & 1
}

// homeClusterForDDR picks the affinity cluster hosting the home directory
// of a DDR line served by channel ch. Both quadrants of a hemisphere share
// the IMC, so in four-cluster modes the quadrant is chosen by address hash.
func (m *Mapper) homeClusterForDDR(ch int, l cache.Line) int {
	hemi := m.fp.IMCHemisphere(ch / 3)
	switch m.cfg.Cluster.Clusters() {
	case 1:
		return 0
	case 2:
		return hemi
	default:
		return hemi | int(hash(l, 0x44)&1)<<1
	}
}

// clusterOfEDC maps an EDC to its affinity cluster.
func (m *Mapper) clusterOfEDC(e int) int {
	q := m.fp.EDCQuadrant(e)
	switch m.cfg.Cluster.Clusters() {
	case 1:
		return 0
	case 2:
		return q & 1 // hemisphere bit
	default:
		return q
	}
}

// hash mixes a line address into a well-distributed 64-bit value
// (splitmix64 finalizer).
func hash(l cache.Line, salt uint64) uint64 {
	z := uint64(l)*0x9e3779b97f4a7c15 + salt
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// LinePlace is the resolved placement of one line.
type LinePlace struct {
	Kind     knl.MemKind
	Channel  int // DDR channel 0-5 or EDC 0-7, depending on Kind
	HomeTile int // logical tile hosting the CHA tag directory for the line
	Cluster  int // affinity cluster the line landed in
}

// Place resolves the memory channel and home directory for a line of the
// given kind. affinity is the allocation cluster for NUMA-visible (SNC)
// modes and is ignored otherwise; transparent modes interleave lines over
// all channels and pick the directory in the cluster of the chosen channel
// (Figure 3b), while A2A hashes directories over the whole die (Figure 3a).
func (m *Mapper) Place(kind knl.MemKind, affinity int, l cache.Line) LinePlace {
	var chans []int
	nClusters := m.cfg.Cluster.Clusters()
	numaVisible := m.cfg.Cluster.NUMAVisible()
	if numaVisible {
		if affinity < 0 || affinity >= nClusters {
			panic(fmt.Sprintf("cluster: bad affinity %d for %v", affinity, m.cfg.Cluster))
		}
		chans = m.channelsOf(kind, affinity)
	} else {
		chans = m.allChannels(kind)
	}
	ch := chans[int(hash(l, 0x11)%uint64(len(chans)))]

	// Home directory cluster: A2A spreads over the die; all other modes put
	// the home in the cluster that owns the memory channel.
	var homeCluster int
	if m.cfg.Cluster == knl.A2A {
		homeCluster = 0
	} else if kind == knl.DDR {
		homeCluster = m.homeClusterForDDR(ch, l)
	} else {
		homeCluster = m.clusterOfEDC(ch)
	}
	tiles := m.tilesByCluster[homeCluster]
	home := tiles[int(hash(l, 0x22)%uint64(len(tiles)))]
	return LinePlace{Kind: kind, Channel: ch, HomeTile: home, Cluster: homeCluster}
}

// CacheEDC returns the EDC whose MCDRAM slice caches the given DDR line in
// cache/hybrid memory mode. The cache is distributed across the EDCs of the
// cluster owning the DDR channel (all EDCs in A2A).
func (m *Mapper) CacheEDC(ddrChannel int, l cache.Line) int {
	var edcs []int
	if m.cfg.Cluster == knl.A2A {
		edcs = m.allChannels(knl.MCDRAM)
	} else {
		c := m.homeClusterForDDR(ddrChannel, l)
		edcs = m.edcByCluster[c]
	}
	return edcs[int(hash(l, 0x33)%uint64(len(edcs)))]
}

// channelsOf returns the channels of the kind available to a cluster.
func (m *Mapper) channelsOf(kind knl.MemKind, cluster int) []int {
	if kind == knl.DDR {
		return m.ddrByCluster[cluster]
	}
	return m.edcByCluster[cluster]
}

// allChannels returns the precomputed full channel list of the kind; the
// caller must not modify it.
func (m *Mapper) allChannels(kind knl.MemKind) []int {
	if kind == knl.MCDRAM {
		return m.allEDC
	}
	return m.allDDR
}

// ChannelsFor exposes the channel set a cluster may use (for tests and
// reporting).
func (m *Mapper) ChannelsFor(kind knl.MemKind, cluster int) []int {
	if !m.cfg.Cluster.NUMAVisible() {
		return append([]int(nil), m.allChannels(kind)...)
	}
	return append([]int(nil), m.channelsOf(kind, cluster)...)
}

// ClusterOfTile returns the affinity cluster of a tile under the mapper's
// mode.
func (m *Mapper) ClusterOfTile(tile int) int {
	return m.fp.TileCluster(m.cfg.Cluster, tile)
}

// Clusters returns the number of affinity clusters.
func (m *Mapper) Clusters() int { return m.cfg.Cluster.Clusters() }
