#!/usr/bin/env bash
# bench_baseline.sh — record the performance trajectory of the simulation
# engine and the parallel experiment runner in BENCH_sweep.json.
#
#   scripts/bench_baseline.sh            # run benchmarks, write BENCH_sweep.json
#   BENCHTIME=2s scripts/bench_baseline.sh
#
# The JSON holds three blocks:
#   baseline   — the pre-optimization engine (container/heap + two-channel
#                scheduler), measured once before the rewrite and kept fixed
#                as the comparison point;
#   current    — this checkout, measured now: engine event throughput
#                (ns/event, events/s, allocs/op), the per-line-access cost
#                of the machine load and store hot paths, the Figure 9
#                triad sweep wall-clock at -parallel 1 vs GOMAXPROCS, the
#                Table I latency sweep wall-clock cold vs converged
#                (ConvergeAfter) vs cache-warm (memo), and the contention+
#                congestion sweep on the step engine vs NoSteps;
#   trajectory — append-only history, one record per run: git SHA, UTC
#                date, ns/event, ns_per_line_access and allocs/op.
#                Earlier records are preserved across runs, so the file
#                accumulates the engine's performance trajectory over the
#                repo's life.
#
# GOMAXPROCS is pinned explicitly (inherited value, else the online CPU
# count) and recorded in the JSON, so a sweep speedup can be judged
# against the parallelism it actually ran with: on a 1-CPU host the
# parallel sweep cannot beat serial (speedup ~= 1; the pre-pooling runner
# showed 0.98 from worker overhead with a single scheduler thread).
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1s}"
out="BENCH_sweep.json"

cores="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN)}"
export GOMAXPROCS="$cores"

engine=$(go test -bench=EngineEventThroughput -benchmem -benchtime="$benchtime" -run '^$' ./internal/sim/)
hotpath=$(go test -bench='LoadLineHotPath|StoreLineHotPath' -benchmem -benchtime="$benchtime" -run '^$' ./internal/machine/)
sweep=$(go test -bench=SweepParallel -benchtime=1x -run '^$' ./internal/exp/)
latency=$(go test -bench=LatencySweep -benchtime=3x -run '^$' ./internal/exp/)
contention=$(go test -bench=ContentionSweep -benchtime=3x -run '^$' ./internal/exp/)

# go test -bench output:
# BenchmarkEngineEventThroughput  N  <ns/op> ns/op  <ev/s> events/s  <ns/ev> ns/event  <B> B/op  <allocs> allocs/op
read -r ns_op events_s ns_event b_op allocs_op <<EOF
$(echo "$engine" | awk '/^BenchmarkEngineEventThroughput/ {
    for (i = 1; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "events/s")  ev = $(i-1)
        if ($i == "ns/event")  ne = $(i-1)
        if ($i == "B/op")      b  = $(i-1)
        if ($i == "allocs/op") a  = $(i-1)
    }
    print ns, ev, ne, b, a
}')
EOF

# BenchmarkLoadLineHotPath  N  <ns/op> ns/op  <B> B/op  <allocs> allocs/op
read -r line_ns line_allocs <<EOF
$(echo "$hotpath" | awk '/^BenchmarkLoadLineHotPath/ {
    for (i = 1; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "allocs/op") a  = $(i-1)
    }
    print ns, a
}')
EOF

read -r store_ns store_allocs <<EOF
$(echo "$hotpath" | awk '/^BenchmarkStoreLineHotPath/ {
    for (i = 1; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "allocs/op") a  = $(i-1)
    }
    print ns, a
}')
EOF

serial_ns=$(echo "$sweep" | awk '/SweepParallel\/serial/     { for (i=1;i<=NF;i++) if ($i=="ns/op") print $(i-1) }')
par_ns=$(echo "$sweep"    | awk '/SweepParallel\/gomaxprocs/ { for (i=1;i<=NF;i++) if ($i=="ns/op") print $(i-1) }')
speedup=$(awk -v s="$serial_ns" -v p="$par_ns" 'BEGIN { printf "%.2f", s / p }')

# Table I latency sweep wall-clock under the three execution regimes:
# cold (exact simulation), converged (ConvergeAfter extrapolation), and
# cache-warm (answered from the memo cache). The PR acceptance bar is
# cold/converged >= 5.
cold_ns=$(echo "$latency"      | awk '/LatencySweep\/cold/      { for (i=1;i<=NF;i++) if ($i=="ns/op") print $(i-1) }')
converged_ns=$(echo "$latency" | awk '/LatencySweep\/converged/ { for (i=1;i<=NF;i++) if ($i=="ns/op") print $(i-1) }')
warm_ns=$(echo "$latency"      | awk '/LatencySweep\/warm/      { for (i=1;i<=NF;i++) if ($i=="ns/op") print $(i-1) }')
converge_speedup=$(awk -v c="$cold_ns" -v g="$converged_ns" 'BEGIN { printf "%.2f", c / g }')
warm_speedup=$(awk -v c="$cold_ns" -v w="$warm_ns" 'BEGIN { printf "%.2f", c / w }')

# Contention + congestion sweep (store walk + signal-watch juncture) on the
# step engine vs the same sweeps forced onto goroutine processes; the
# nosteps side is what the pre-port simulator ran, so steps_speedup is the
# wall-clock win of porting the store path.
steps_ns=$(echo "$contention"   | awk '/ContentionSweep\/steps/   { for (i=1;i<=NF;i++) if ($i=="ns/op") print $(i-1) }')
nosteps_ns=$(echo "$contention" | awk '/ContentionSweep\/nosteps/ { for (i=1;i<=NF;i++) if ($i=="ns/op") print $(i-1) }')
steps_speedup=$(awk -v s="$steps_ns" -v g="$nosteps_ns" 'BEGIN { printf "%.2f", g / s }')

# Carry the trajectory forward before overwriting the file.
traj='[]'
if [ -f "$out" ]; then
    traj=$(jq -c '.trajectory // []' "$out" 2>/dev/null || echo '[]')
fi
sha=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
today=$(date -u +%Y-%m-%d)

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
cat > "$tmp" <<EOF
{
  "comment": "engine + sweep performance trajectory; regenerate with scripts/bench_baseline.sh",
  "baseline": {
    "engine": "container/heap + two-channel scheduler (pre-rewrite)",
    "event_throughput": {
      "ns_per_op": 2748,
      "ns_per_event": 687.1,
      "events_per_sec": 1455367,
      "bytes_per_op": 192,
      "allocs_per_op": 8
    },
    "process_handoff_ns_per_op": 592.8,
    "spawn_churn": { "ns_per_op": 2218, "bytes_per_op": 320, "allocs_per_op": 9 },
    "sweep": "serial only (no -parallel)"
  },
  "current": {
    "engine": "4-ary slice heap + stackless step processes on the hot path + direct goroutine handoff with resume-channel free list for the rest",
    "gomaxprocs": $cores,
    "event_throughput": {
      "ns_per_op": $ns_op,
      "ns_per_event": $ns_event,
      "events_per_sec": $events_s,
      "bytes_per_op": $b_op,
      "allocs_per_op": $allocs_op
    },
    "line_access": {
      "ns_per_line_access": $line_ns,
      "allocs_per_op": $line_allocs,
      "store_ns_per_line_access": $store_ns,
      "store_allocs_per_op": $store_allocs
    },
    "fig9_triad_sweep": {
      "serial_ns_per_op": $serial_ns,
      "gomaxprocs_ns_per_op": $par_ns,
      "speedup": $speedup
    },
    "table1_latency_sweep": {
      "cold_ns_per_op": $cold_ns,
      "converged_ns_per_op": $converged_ns,
      "cache_warm_ns_per_op": $warm_ns,
      "converge_speedup": $converge_speedup,
      "cache_warm_speedup": $warm_speedup
    },
    "contention_congestion_sweep": {
      "steps_ns_per_op": $steps_ns,
      "nosteps_ns_per_op": $nosteps_ns,
      "steps_speedup": $steps_speedup
    }
  }
}
EOF

jq --argjson traj "$traj" \
   --arg sha "$sha" --arg date "$today" \
   --argjson ns_event "$ns_event" --argjson line_ns "$line_ns" \
   --argjson store_ns "$store_ns" \
   --argjson contention_ns "$steps_ns" \
   --argjson allocs "$allocs_op" \
   '.trajectory = $traj + [{sha: $sha, date: $date,
                            ns_per_event: $ns_event,
                            ns_per_line_access: $line_ns,
                            store_ns_per_line_access: $store_ns,
                            contention_sweep_ns: $contention_ns,
                            allocs_per_op: $allocs}]' \
   "$tmp" > "$out"

echo "wrote $out:"
cat "$out"
