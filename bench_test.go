// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus ablations of the design choices DESIGN.md calls
// out. Each benchmark regenerates its experiment at reduced measurement
// effort and reports the headline quantity via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reprints the whole evaluation. The cmd/ binaries produce the full-effort
// versions.
package knlcap_test

import (
	"testing"

	"knlcap/internal/bench"
	"knlcap/internal/cache"
	"knlcap/internal/coll"
	"knlcap/internal/core"
	"knlcap/internal/knl"
	"knlcap/internal/msort"
	"knlcap/internal/tune"
)

func opts() bench.Options {
	o := bench.DefaultOptions().Quick()
	o.WindowNs = 1e6
	return o
}

// BenchmarkFigure1TunedTree derives the model-tuned reduce tree for 64
// cores (32 tiles) — Figure 1 — and reports its predicted cost.
func BenchmarkFigure1TunedTree(b *testing.B) {
	model := core.Default()
	var cost float64
	for i := 0; i < b.N; i++ {
		cost = tune.Reduce(model, 32).CostNs.Float()
	}
	b.ReportMetric(cost, "model-ns")
}

// BenchmarkTableILatency regenerates the Table I latency rows (SNC4).
func BenchmarkTableILatency(b *testing.B) {
	var r bench.CacheLatencies
	for i := 0; i < b.N; i++ {
		r = bench.MeasureCacheLatencies(knl.DefaultConfig(), opts(), 4)
	}
	b.ReportMetric(r.LocalL1, "L1-ns")
	b.ReportMetric(r.TileM, "tileM-ns")
	b.ReportMetric((r.RemoteM.Lo+r.RemoteM.Hi)/2, "remoteM-ns")
}

// BenchmarkTableIBandwidth regenerates the Table I bandwidth rows (SNC4).
func BenchmarkTableIBandwidth(b *testing.B) {
	o := opts()
	o.Iterations = 6
	var r bench.CacheBandwidths
	for i := 0; i < b.N; i++ {
		r = bench.MeasureCacheBandwidths(knl.DefaultConfig(), o, []int{1024})
	}
	b.ReportMetric(r.Read, "read-GBs")
	b.ReportMetric(r.CopyRemote, "copyRemote-GBs")
	b.ReportMetric(r.CopyTileE, "copyTileE-GBs")
}

// BenchmarkTableIContention regenerates the Table I contention row.
func BenchmarkTableIContention(b *testing.B) {
	o := opts()
	o.Iterations = 8
	var r bench.ContentionResult
	for i := 0; i < b.N; i++ {
		r = bench.MeasureContention(knl.DefaultConfig(), o, []int{1, 4, 8, 16, 32})
	}
	b.ReportMetric(r.Alpha, "alpha-ns")
	b.ReportMetric(r.Beta, "beta-ns")
}

// BenchmarkTableICongestion regenerates the Table I congestion row
// (the paper reports "None": ratio ~1).
func BenchmarkTableICongestion(b *testing.B) {
	var r bench.CongestionResult
	for i := 0; i < b.N; i++ {
		r = bench.MeasureCongestion(knl.DefaultConfig(), opts(), 8)
	}
	b.ReportMetric(r.Ratio, "ratio")
}

// BenchmarkTableIIFlat regenerates the flat-mode Table II bandwidth block
// for the Quadrant column.
func BenchmarkTableIIFlat(b *testing.B) {
	o := opts()
	cfg := knl.DefaultConfig().WithModes(knl.Quadrant, knl.Flat)
	var dRead, mRead, dWrite float64
	for i := 0; i < b.N; i++ {
		dRead = bench.MeasureMemBandwidth(cfg, o, bench.KernelRead, knl.DDR, true, 32, knl.FillTiles).GBs
		mRead = bench.MeasureMemBandwidth(cfg, o, bench.KernelRead, knl.MCDRAM, true, 128, knl.FillTiles).GBs
		dWrite = bench.MeasureMemBandwidth(cfg, o, bench.KernelWrite, knl.DDR, true, 32, knl.FillTiles).GBs
	}
	b.ReportMetric(dRead, "DDR-read-GBs")
	b.ReportMetric(mRead, "MCDRAM-read-GBs")
	b.ReportMetric(dWrite, "DDR-write-GBs")
}

// BenchmarkTableIICacheMode regenerates the cache-mode Table II latency.
func BenchmarkTableIICacheMode(b *testing.B) {
	cfg := knl.DefaultConfig().WithModes(knl.Quadrant, knl.CacheMode)
	var lat bench.MemLatencies
	for i := 0; i < b.N; i++ {
		lat = bench.MeasureMemLatencies(cfg, opts())
	}
	b.ReportMetric((lat.Cache.Lo+lat.Cache.Hi)/2, "latency-ns")
}

// BenchmarkFigure4 regenerates the per-core latency sweep (reduced: E
// state only).
func BenchmarkFigure4(b *testing.B) {
	o := opts()
	o.Averages, o.Passes = 3, 1
	var spread float64
	for i := 0; i < b.N; i++ {
		pts := bench.MeasurePerCoreLatencies(knl.DefaultConfig(), o,
			[]cache.State{cache.Exclusive})
		lo, hi := pts[0].Latency, pts[0].Latency
		for _, p := range pts {
			if p.Latency < lo {
				lo = p.Latency
			}
			if p.Latency > hi {
				hi = p.Latency
			}
		}
		spread = hi - lo
	}
	b.ReportMetric(spread, "spread-ns")
}

// BenchmarkFigure5 regenerates the copy-bandwidth-by-size sweep
// (SNC4-cache, three sizes).
func BenchmarkFigure5(b *testing.B) {
	o := opts()
	o.Iterations = 4
	cfg := knl.DefaultConfig().WithModes(knl.SNC4, knl.CacheMode)
	var last float64
	for i := 0; i < b.N; i++ {
		pts := bench.MeasureCopyBySize(cfg, o, []int{64, 4096, 65536})
		last = pts[len(pts)-1].GBs
	}
	b.ReportMetric(last, "remoteE64K-GBs")
}

func benchCollective(b *testing.B, op coll.Op) {
	cfg := knl.DefaultConfig()
	model := core.Default()
	o := opts()
	o.Iterations = 8
	var tuned, omp, mpi float64
	for i := 0; i < b.N; i++ {
		p := coll.DefaultParams(64, knl.Scatter)
		tuned = coll.Measure(cfg, model, o, op, coll.Tuned, p).Summary.Med
		omp = coll.Measure(cfg, model, o, op, coll.OMP, p).Summary.Med
		mpi = coll.Measure(cfg, model, o, op, coll.MPI, p).Summary.Med
	}
	b.ReportMetric(tuned, "tuned-ns")
	b.ReportMetric(omp/tuned, "speedup-vs-omp")
	b.ReportMetric(mpi/tuned, "speedup-vs-mpi")
}

// BenchmarkFigure6Barrier regenerates the 64-thread barrier comparison.
func BenchmarkFigure6Barrier(b *testing.B) { benchCollective(b, coll.Barrier) }

// BenchmarkFigure7Broadcast regenerates the 64-thread broadcast comparison.
func BenchmarkFigure7Broadcast(b *testing.B) { benchCollective(b, coll.Bcast) }

// BenchmarkFigure8Reduce regenerates the 64-thread reduce comparison.
func BenchmarkFigure8Reduce(b *testing.B) { benchCollective(b, coll.Reduce) }

// BenchmarkFigure9Triad regenerates the triad saturation sweep.
func BenchmarkFigure9Triad(b *testing.B) {
	o := opts()
	o.Iterations = 5
	var mc, dd float64
	for i := 0; i < b.N; i++ {
		pts := bench.TriadSweep(knl.DefaultConfig(), o, knl.FillTiles, []int{16, 64})
		mc, dd = pts[1].GBs, pts[3].GBs
	}
	b.ReportMetric(mc, "MCDRAM64t-GBs")
	b.ReportMetric(dd, "DRAM64t-GBs")
}

// BenchmarkFigure10Sort regenerates one Figure 10 panel (256 KB, DRAM).
func BenchmarkFigure10Sort(b *testing.B) {
	cfg := knl.DefaultConfig()
	model := core.Default()
	oh := core.OverheadModel{Alpha: 2500, Beta: 10}
	var measured, memBW float64
	for i := 0; i < b.N; i++ {
		pts := msort.Figure10(cfg, model, oh, 4096, knl.DDR, []int{16})
		measured, memBW = pts[0].MeasuredNs.Float(), pts[0].MemBWNs.Float()
	}
	b.ReportMetric(measured, "measured-ns")
	b.ReportMetric(measured/memBW, "vs-mem-model")
}

// BenchmarkHeadlineMCDRAMSortClaim quantifies the paper's headline: MCDRAM
// does not improve the merge sort, while it improves triad ~5x.
func BenchmarkHeadlineMCDRAMSortClaim(b *testing.B) {
	cfg := knl.DefaultConfig()
	var sortGain, triadGain float64
	o := opts()
	o.Iterations = 5
	for i := 0; i < b.N; i++ {
		d := msort.Simulate(cfg, msort.DefaultSimParams(16384, 32, knl.DDR))
		mc := msort.Simulate(cfg, msort.DefaultSimParams(16384, 32, knl.MCDRAM))
		sortGain = d.Float() / mc.Float()
		td := bench.MeasureMemBandwidth(cfg, o, bench.KernelTriad, knl.DDR, true, 128, knl.FillTiles).GBs
		tm := bench.MeasureMemBandwidth(cfg, o, bench.KernelTriad, knl.MCDRAM, true, 128, knl.FillTiles).GBs
		triadGain = tm / td
	}
	b.ReportMetric(sortGain, "sort-MCDRAM-gain")
	b.ReportMetric(triadGain, "triad-MCDRAM-gain")
}

// --- Ablations (DESIGN.md Section 5) ---------------------------------------

// BenchmarkAblationTreeShapes compares the tuned tree against standard
// shapes under the model.
func BenchmarkAblationTreeShapes(b *testing.B) {
	model := core.Default()
	var tuned, binomial, flat float64
	for i := 0; i < b.N; i++ {
		tuned = tune.Broadcast(model, 32).CostNs.Float()
		binomial = model.BroadcastCost(core.BinomialTree(32)).Float()
		flat = model.BroadcastCost(core.FlatTree(32)).Float()
	}
	b.ReportMetric(binomial/tuned, "binomial-vs-tuned")
	b.ReportMetric(flat/tuned, "flat-vs-tuned")
}

// BenchmarkAblationBarrierFanout compares the tuned m against m=1
// dissemination and a centralized barrier on the simulator.
func BenchmarkAblationBarrierFanout(b *testing.B) {
	model := core.Default()
	var tuned, m1 float64
	for i := 0; i < b.N; i++ {
		tuned = model.BarrierCost(64, tune.Barrier(model, 64).M).Float()
		m1 = model.BarrierCost(64, 1).Float()
	}
	b.ReportMetric(m1/tuned, "m1-vs-tuned")
}

// BenchmarkAblationNTStores measures the NT-vs-cached write gap at low
// thread count (the reason the paper uses NT hints).
func BenchmarkAblationNTStores(b *testing.B) {
	o := opts()
	o.Iterations = 6
	cfg := knl.DefaultConfig().WithModes(knl.Quadrant, knl.Flat)
	var nt, cached float64
	for i := 0; i < b.N; i++ {
		nt = bench.MeasureMemBandwidth(cfg, o, bench.KernelWrite, knl.DDR, true, 2, knl.FillTiles).GBs
		cached = bench.MeasureMemBandwidth(cfg, o, bench.KernelWrite, knl.DDR, false, 2, knl.FillTiles).GBs
	}
	b.ReportMetric(nt/cached, "NT-gain")
}

// BenchmarkAblationClusterModes measures the MCDRAM copy spread across
// cluster modes (Table II's SNC4-vs-A2A delta).
func BenchmarkAblationClusterModes(b *testing.B) {
	o := opts()
	o.Iterations = 5
	var snc4, a2a float64
	for i := 0; i < b.N; i++ {
		snc4 = bench.MeasureMemBandwidth(knl.DefaultConfig().WithModes(knl.SNC4, knl.Flat),
			o, bench.KernelCopy, knl.MCDRAM, true, 64, knl.FillTiles).GBs
		a2a = bench.MeasureMemBandwidth(knl.DefaultConfig().WithModes(knl.A2A, knl.Flat),
			o, bench.KernelCopy, knl.MCDRAM, true, 64, knl.FillTiles).GBs
	}
	b.ReportMetric(snc4/a2a, "SNC4-vs-A2A")
}

// BenchmarkAblationIntraTileIsolation compares scatter (one thread per
// tile) with fill-tiles (two per tile, flat intra-tile stage) for the
// tuned reduce.
func BenchmarkAblationIntraTileIsolation(b *testing.B) {
	cfg := knl.DefaultConfig()
	model := core.Default()
	o := opts()
	o.Iterations = 6
	var scatter, fill float64
	for i := 0; i < b.N; i++ {
		scatter = coll.Measure(cfg, model, o, coll.Reduce, coll.Tuned,
			coll.DefaultParams(32, knl.Scatter)).Summary.Med
		fill = coll.Measure(cfg, model, o, coll.Reduce, coll.Tuned,
			coll.DefaultParams(64, knl.FillTiles)).Summary.Med
	}
	b.ReportMetric(scatter, "scatter32-ns")
	b.ReportMetric(fill, "fill64-ns")
}

// BenchmarkExtensionAllreduce measures the fused tuned allreduce vs the
// baselines (a beyond-the-paper extension; see DESIGN.md Section 6).
func BenchmarkExtensionAllreduce(b *testing.B) {
	cfg := knl.DefaultConfig()
	model := core.Default()
	o := opts()
	o.Iterations = 6
	var tuned, mpi float64
	for i := 0; i < b.N; i++ {
		p := coll.DefaultParams(32, knl.Scatter)
		tuned = coll.Measure(cfg, model, o, coll.Allreduce, coll.Tuned, p).Summary.Med
		mpi = coll.Measure(cfg, model, o, coll.Allreduce, coll.MPI, p).Summary.Med
	}
	b.ReportMetric(tuned, "tuned-ns")
	b.ReportMetric(mpi/tuned, "speedup-vs-mpi")
}

// BenchmarkExtensionAllgather measures the m-way dissemination allgather.
func BenchmarkExtensionAllgather(b *testing.B) {
	cfg := knl.DefaultConfig()
	model := core.Default()
	o := opts()
	o.Iterations = 6
	var tuned, mpi float64
	for i := 0; i < b.N; i++ {
		p := coll.DefaultParams(32, knl.Scatter)
		tuned = coll.Measure(cfg, model, o, coll.Allgather, coll.Tuned, p).Summary.Med
		mpi = coll.Measure(cfg, model, o, coll.Allgather, coll.MPI, p).Summary.Med
	}
	b.ReportMetric(tuned, "tuned-ns")
	b.ReportMetric(mpi/tuned, "speedup-vs-mpi")
}

// BenchmarkAblationNUMAAllocation quantifies NUMA-unaware allocation in
// SNC4 (the paper: "memory pinning, or NUMA-aware allocation" are
// variables whose impact must be measured).
func BenchmarkAblationNUMAAllocation(b *testing.B) {
	o := opts()
	o.Iterations = 6
	var local, node0 float64
	for i := 0; i < b.N; i++ {
		pts := bench.MeasureNUMAAblation(knl.DefaultConfig(), o, 32)
		for _, p := range pts {
			switch p.Policy {
			case bench.NUMALocal:
				local = p.GBs
			case bench.NUMANode0:
				node0 = p.GBs
			}
		}
	}
	b.ReportMetric(local, "local-GBs")
	b.ReportMetric(local/node0, "local-vs-node0")
}

// BenchmarkRooflineVsCapability reports the two models' MCDRAM-gain
// predictions for the merge sort (the related-work critique).
func BenchmarkRooflineVsCapability(b *testing.B) {
	model := core.Default()
	var capGain float64
	for i := 0; i < b.N; i++ {
		lines := (16 << 20) / knl.LineSize
		capGain = model.SortCost(core.DefaultSortParams(model, lines, 64, knl.DDR), true).Float() /
			model.SortCost(core.DefaultSortParams(model, lines, 64, knl.MCDRAM), true).Float()
	}
	b.ReportMetric(5.46, "roofline-predicted-gain")
	b.ReportMetric(capGain, "capability-predicted-gain")
}

// BenchmarkExtensionScan measures the prefix-sum collective: log-depth
// tuned vs the linear-chain baseline.
func BenchmarkExtensionScan(b *testing.B) {
	cfg := knl.DefaultConfig()
	model := core.Default()
	o := opts()
	o.Iterations = 6
	var tuned, omp float64
	for i := 0; i < b.N; i++ {
		p := coll.DefaultParams(64, knl.Scatter)
		tuned = coll.Measure(cfg, model, o, coll.Scan, coll.Tuned, p).Summary.Med
		omp = coll.Measure(cfg, model, o, coll.Scan, coll.OMP, p).Summary.Med
	}
	b.ReportMetric(tuned, "tuned-ns")
	b.ReportMetric(omp/tuned, "speedup-vs-chain")
}
